//! Reduction (sum) kernels — the scan's sibling primitive.
//!
//! The paper builds on Dakkak et al. (ICS'19), which accelerates both
//! *reduction and scan* with matrix engines; the same `A @ 1ₛ` trick that
//! powers ScanUL1's second term computes `s` row sums in one matmul.
//! Two implementations are provided:
//!
//! * [`reduce_cube`] — multi-core cube reduction: each cube core turns
//!   its `ℓ = s²` tiles into row-sum columns (`C = A @ 1ₛ`, column 0
//!   holds the row sums), the block's vector cores accumulate the
//!   columns, and a final small reduction over the per-chunk partials
//!   runs in UB. Traffic ≈ `N` reads + a sliver — reduction approaches
//!   the copy roofline where scan cannot.
//! * [`reduce_vec`] — the vector-only baseline (`ReduceSum` over tiles).
//!
//! Both return exact sums in the accumulator domain (f32 for fp16 input,
//! i32 for int8) using the same pairwise lane-tree semantics as the
//! hardware reduction.

use crate::triangular::ScanConstants;
use crate::util::{partition, tile_spans};
use ascend_sim::mem::GlobalMemory;
use ascend_sim::KernelReport;
use ascendc::{
    launch, ChipSpec, GlobalTensor, ScratchpadKind, SimError, SimResult, SpanArgs, TQue,
};
use dtypes::{CubeInput, Element, Numeric};
use std::sync::Arc;

/// Result of a reduction kernel.
pub struct ReduceRun<A: Element> {
    /// The total.
    pub total: A,
    /// Execution report.
    pub report: KernelReport,
}

/// Multi-core cube+vector reduction of `x` (sum in the accumulator
/// domain): `C = A @ 1ₛ` per tile on the cube cores, column accumulation
/// on the vector cores.
pub fn reduce_cube<T>(
    spec: &ChipSpec,
    gm: &Arc<GlobalMemory>,
    x: &GlobalTensor<T>,
    s: usize,
    blocks: u32,
) -> SimResult<ReduceRun<T::Acc>>
where
    T: CubeInput,
{
    if s == 0 || !s.is_multiple_of(16) {
        return Err(SimError::InvalidArgument(format!(
            "reduce_cube: s must be a positive multiple of 16, got {s}"
        )));
    }
    if blocks == 0 || blocks > spec.ai_cores {
        return Err(SimError::InvalidArgument(format!(
            "reduce_cube: blocks {blocks} out of range 1..={}",
            spec.ai_cores
        )));
    }
    let n = x.len();
    if n == 0 {
        return Err(SimError::InvalidArgument("reduce_cube: empty input".into()));
    }
    let l = s * s;
    let consts = ScanConstants::<T>::upload(gm, s)?;
    let chunks_total = (blocks * spec.vec_per_core) as usize;
    let tiles = tile_spans(n, l);
    let chunk_tiles = partition(tiles.len(), chunks_total);
    // Row-sum columns land here (one s-column per tile), then per-chunk
    // partials in r.
    let cols = GlobalTensor::<T::Acc>::new(gm, tiles.len() * s)?;
    let r = GlobalTensor::<T::Acc>::new(gm, chunks_total)?;

    let mut report = launch(spec, gm, blocks, "ReduceCube", |ctx| {
        let block = ctx.block_idx as usize;
        let vec_per_core = ctx.vecs.len();
        // Cube: row sums per tile; FIXP writes only the first column
        // (s values per tile instead of s^2 — the reduction's traffic
        // advantage over scan).
        let phase = ctx.span_begin("CubeRowSums");
        {
            let flags = &ctx.flags;
            let cube = &mut ctx.cube;
            let mut lb = cube.alloc_local::<T>(ScratchpadKind::L0B, l)?;
            cube.copy_in(&mut lb, 0, &consts.ones, 0, l, &[])?;
            let da = if 2 * l * T::SIZE <= cube.spec().l0a_capacity {
                2
            } else {
                1
            };
            let dc = if 2 * l * <T::Acc as Element>::SIZE <= cube.spec().l0c_capacity {
                2
            } else {
                1
            };
            let mut qa = TQue::<T>::new(cube, ScratchpadKind::L0A, da, l)?.named("qa(L0A)");
            let mut qc = TQue::<T::Acc>::new(cube, ScratchpadKind::L0C, dc, l)?.named("qc(L0C)");
            for v in 0..vec_per_core {
                let (t0, tcount) = chunk_tiles[block * vec_per_core + v];
                for (ti, &(off, valid)) in tiles[t0..t0 + tcount].iter().enumerate() {
                    let rows = valid.div_ceil(s);
                    let tile = cube.span_begin("tile");
                    let mut la = qa.alloc_tensor()?;
                    if valid < rows * s {
                        cube.fill_local(&mut la, 0, rows * s, T::zero())?;
                    }
                    cube.copy_in(&mut la, 0, x, off, valid, &[])?;
                    let mut lc = qc.alloc_tensor()?;
                    let mm = cube.mmad::<T>(&mut lc, &mut la, &mut lb, rows, s, s, false)?;
                    qa.free_tensor(la, mm);
                    // Column 0 of C holds the row sums: one strided
                    // FIXP copy extracts it (s values instead of s^2).
                    let ev = cube.copy_out_2d(&cols, (t0 + ti) * s, &lc, 0, rows, 1, s, &[])?;
                    qc.free_tensor(lc, ev);
                    cube.span_args(
                        tile,
                        SpanArgs {
                            bytes: (valid * T::SIZE + rows * <T::Acc as Element>::SIZE) as u64,
                            kind: "mmad",
                            queue_depth: da as u32,
                        },
                    );
                    cube.span_end_at(tile, ev);
                    // Priced AIC→AIV hand-off: one CrossCoreSetFlag per
                    // tile, matched by the consumer's CrossCoreWaitFlag.
                    // Tile indices cycle the chip's small flag-id space;
                    // each id's FIFO keeps set/wait pairs aligned.
                    cube.set_flag(flags, (t0 + ti) as u32 % flags.limit(), &[ev])?;
                }
            }
            cube.free_local(lb)?;
            qa.destroy(cube)?;
            qc.destroy(cube)?;
        }
        ctx.span_end(phase);
        let phase = ctx.span_begin("VecAccumulate");
        // Vector cores: accumulate each chunk's row-sum columns.
        // (Index loop: `v` addresses ctx.vecs and the chunk id at once.)
        #[allow(clippy::needless_range_loop)]
        for v in 0..vec_per_core {
            let chunk = block * vec_per_core + v;
            let (t0, tcount) = chunk_tiles[chunk];
            let flags = &ctx.flags;
            let vc = &mut ctx.vecs[v];
            let mut buf = vc.alloc_local::<T::Acc>(ScratchpadKind::Ub, s)?;
            let mut total = T::Acc::zero();
            let mut total_ready = 0;
            for (ti, &(_, valid)) in tiles[t0..t0 + tcount].iter().enumerate() {
                let rows = valid.div_ceil(s);
                let dep = vc.wait_flag(flags, (t0 + ti) as u32 % flags.limit())?;
                vc.copy_in(&mut buf, 0, &cols, (t0 + ti) * s, rows, &[dep])?;
                let (sum, ready) = vc.reduce_sum(&buf, 0, rows)?;
                total = total.add(sum);
                total_ready = vc.scalar_ops(1, &[ready, total_ready])?;
            }
            let mut one = vc.alloc_local::<T::Acc>(ScratchpadKind::Ub, 1)?;
            vc.insert(&mut one, 0, total, total_ready)?;
            vc.copy_out(&r, chunk, &one, 0, 1, &[])?;
            vc.free_local(one)?;
            vc.free_local(buf)?;
        }
        ctx.span_end(phase);
        ctx.sync_all()?;
        // Final: block 0's first vector core folds the chunk partials.
        if ctx.block_idx == 0 {
            let vc = &mut ctx.vecs[0];
            let mut r_ub = vc.alloc_local::<T::Acc>(ScratchpadKind::Ub, chunks_total)?;
            vc.copy_in(&mut r_ub, 0, &r, 0, chunks_total, &[])?;
            let (grand, ready) = vc.reduce_sum(&r_ub, 0, chunks_total)?;
            let mut one = vc.alloc_local::<T::Acc>(ScratchpadKind::Ub, 1)?;
            vc.insert(&mut one, 0, grand, ready)?;
            vc.copy_out(&r, 0, &one, 0, 1, &[])?;
            vc.free_local(one)?;
            vc.free_local(r_ub)?;
        }
        Ok(())
    })?;

    let total = r.read_range(0, 1)?[0];
    report.elements = n as u64;
    report.useful_bytes = (n * T::SIZE) as u64;
    Ok(ReduceRun { total, report })
}

/// Vector-only reduction baseline: tile loads + `ReduceSum`, spread over
/// all vector cores.
pub fn reduce_vec<T>(
    spec: &ChipSpec,
    gm: &Arc<GlobalMemory>,
    x: &GlobalTensor<T>,
    blocks: u32,
) -> SimResult<ReduceRun<T::Acc>>
where
    T: CubeInput,
{
    let n = x.len();
    if n == 0 {
        return Err(SimError::InvalidArgument("reduce_vec: empty input".into()));
    }
    let chunks_total = (blocks * spec.vec_per_core) as usize;
    let r = GlobalTensor::<T::Acc>::new(gm, chunks_total)?;
    let piece = {
        let per = spec.ub_capacity / (2 * T::SIZE + <T::Acc as Element>::SIZE + 8);
        let mut p = 64;
        while p * 2 <= per && p < 8192 {
            p *= 2;
        }
        p
    };
    let spans = tile_spans(n, piece);
    let chunk_spans = partition(spans.len(), chunks_total);

    let mut report = launch(spec, gm, blocks, "ReduceVec", |ctx| {
        let block = ctx.block_idx as usize;
        let vec_per_core = ctx.vecs.len();
        let phase = ctx.span_begin("VecReduce");
        for v in 0..vec_per_core {
            let chunk = block * vec_per_core + v;
            let (s0, scount) = chunk_spans[chunk];
            let vc = &mut ctx.vecs[v];
            let mut qin = TQue::<T>::new(vc, ScratchpadKind::Ub, 2, piece)?.named("qin(UB)");
            let mut acc = vc.alloc_local::<T::Acc>(ScratchpadKind::Ub, piece)?;
            let mut total = T::Acc::zero();
            let mut total_ready = 0;
            for &(off, valid) in &spans[s0..s0 + scount] {
                let mut buf = qin.alloc_tensor()?;
                vc.copy_in(&mut buf, 0, x, off, valid, &[])?;
                let cast_done = vc.vcast::<T, T::Acc>(&mut acc, &buf, 0, valid)?;
                qin.free_tensor(buf, cast_done);
                let (sum, ready) = vc.reduce_sum(&acc, 0, valid)?;
                total = total.add(sum);
                total_ready = vc.scalar_ops(1, &[ready, total_ready])?;
            }
            let mut one = vc.alloc_local::<T::Acc>(ScratchpadKind::Ub, 1)?;
            vc.insert(&mut one, 0, total, total_ready)?;
            vc.copy_out(&r, chunk, &one, 0, 1, &[])?;
            vc.free_local(one)?;
            vc.free_local(acc)?;
            qin.destroy(vc)?;
        }
        ctx.span_end(phase);
        ctx.sync_all()?;
        if ctx.block_idx == 0 {
            let vc = &mut ctx.vecs[0];
            let mut r_ub = vc.alloc_local::<T::Acc>(ScratchpadKind::Ub, chunks_total)?;
            vc.copy_in(&mut r_ub, 0, &r, 0, chunks_total, &[])?;
            let (grand, ready) = vc.reduce_sum(&r_ub, 0, chunks_total)?;
            let mut one = vc.alloc_local::<T::Acc>(ScratchpadKind::Ub, 1)?;
            vc.insert(&mut one, 0, grand, ready)?;
            vc.copy_out(&r, 0, &one, 0, 1, &[])?;
            vc.free_local(one)?;
            vc.free_local(r_ub)?;
        }
        Ok(())
    })?;

    let total = r.read_range(0, 1)?[0];
    report.elements = n as u64;
    report.useful_bytes = (n * T::SIZE) as u64;
    Ok(ReduceRun { total, report })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtypes::F16;

    fn setup() -> (ChipSpec, Arc<GlobalMemory>) {
        let spec = ChipSpec::tiny();
        let gm = Arc::new(GlobalMemory::new(spec.hbm_capacity));
        (spec, gm)
    }

    #[test]
    fn cube_reduce_matches_exact_sum() {
        let (spec, gm) = setup();
        let data: Vec<i8> = (0..4000).map(|i| ((i * 7) % 11) as i8 - 5).collect();
        let expect: i32 = data.iter().map(|&v| i32::from(v)).sum();
        let x = GlobalTensor::from_slice(&gm, &data).unwrap();
        let run = reduce_cube::<i8>(&spec, &gm, &x, 16, 2).unwrap();
        assert_eq!(run.total, expect);
    }

    #[test]
    fn vec_reduce_matches_exact_sum() {
        let (spec, gm) = setup();
        let data: Vec<u8> = (0..3777).map(|i| (i % 4 == 0) as u8).collect();
        let expect: i32 = data.iter().map(|&v| i32::from(v)).sum();
        let x = GlobalTensor::from_slice(&gm, &data).unwrap();
        let run = reduce_vec::<u8>(&spec, &gm, &x, 2).unwrap();
        assert_eq!(run.total, expect);
    }

    #[test]
    fn both_agree_on_f16() {
        let (spec, gm) = setup();
        let data: Vec<F16> = (0..2000).map(|i| F16::from_f32((i % 5) as f32)).collect();
        let x = GlobalTensor::from_slice(&gm, &data).unwrap();
        let a = reduce_cube::<F16>(&spec, &gm, &x, 16, 2).unwrap();
        let b = reduce_vec::<F16>(&spec, &gm, &x, 2).unwrap();
        // Both accumulate in f32; summation orders differ (matmul rows
        // vs lane tree), so allow float slack.
        assert!((a.total - 4000.0).abs() < 1.0, "cube total {}", a.total);
        assert!((b.total - 4000.0).abs() < 1.0, "vec total {}", b.total);
    }

    #[test]
    fn partial_tail_tiles() {
        let (spec, gm) = setup();
        for n in [1usize, 255, 256, 257, 1000] {
            let data = vec![1i8; n];
            let x = GlobalTensor::from_slice(&gm, &data).unwrap();
            let run = reduce_cube::<i8>(&spec, &gm, &x, 16, 1).unwrap();
            assert_eq!(run.total, n as i32, "n = {n}");
        }
    }

    #[test]
    fn reduction_traffic_is_about_one_read() {
        // Reduction reads N element-bytes plus slivers — far below the
        // scan's 5N — so it should outrun MCScan clearly.
        let spec = ChipSpec::ascend_910b4();
        let gm = Arc::new(GlobalMemory::new(spec.hbm_capacity));
        let n = 4 << 20;
        let data = vec![1i8; n];
        let x = GlobalTensor::from_slice(&gm, &data).unwrap();
        let red = reduce_cube::<i8>(&spec, &gm, &x, 128, spec.ai_cores).unwrap();
        assert_eq!(red.total, n as i32);
        let traffic = red.report.bytes_read + red.report.bytes_written;
        assert!(
            traffic < (n + n / 2) as u64,
            "reduction moved {traffic} B for {n} elements"
        );
        let scan = crate::mcscan::mcscan::<i8, i16, i32>(
            &spec,
            &gm,
            &x,
            crate::mcscan::McScanConfig::for_chip(&spec),
        )
        .unwrap();
        assert!(red.report.time_s() < scan.report.time_s());
    }

    #[test]
    fn rejects_bad_args() {
        let (spec, gm) = setup();
        let x = GlobalTensor::from_slice(&gm, &[1i8; 8]).unwrap();
        assert!(reduce_cube::<i8>(&spec, &gm, &x, 10, 1).is_err());
        assert!(reduce_cube::<i8>(&spec, &gm, &x, 16, 0).is_err());
        let empty = GlobalTensor::<i8>::new(&gm, 0).unwrap();
        assert!(reduce_cube::<i8>(&spec, &gm, &empty, 16, 1).is_err());
        assert!(reduce_vec::<i8>(&spec, &gm, &empty, 1).is_err());
    }
}
