//! **ScanUL1** (Algorithm 2): the single-core scan based on the matrix
//! identity (Equation 1, first derived in Dakkak et al. ICS'19):
//!
//! ```text
//! scan(z) = A @ U_s  +  L_s^- @ A @ 1_s
//! ```
//!
//! where `A` is the `s × s` row-major view of a `ℓ = s²` tile of `z`.
//! The cube evaluates the identity as three matmuls per tile —
//! `C₁ = A @ 1ₛ`, `C₂ = A @ Uₛ`, `C₂ += L⁻ₛ @ C₁` — sharing the left
//! operand `A` between the first two (one L0A load) and reusing the
//! accumulation buffer for the third. The vector core then adds a single
//! partial per `ℓ` tile (versus one per `s`-row in ScanU), which is why
//! ScanUL1 is roughly 2× faster than ScanU at large input lengths.

use crate::triangular::ScanConstants;
use crate::util::tile_spans;
use crate::{finish_report, ScanRun};
use ascend_sim::mem::GlobalMemory;
use ascendc::{
    launch, ChipSpec, GlobalTensor, ScratchpadKind, SimError, SimResult, SpanArgs, TQue,
};
use dtypes::{CubeInput, Numeric};
use std::sync::Arc;

/// Runs ScanUL1 over `x` with tile dimension `s`, producing the
/// inclusive scan in element type `O`.
///
/// Precision note: the intermediate `C₁` is cast from the accumulator
/// type back to `T` when staged through L1 (the FIXP quantization path),
/// exactly as the fp16 pipeline on hardware does — partial row sums must
/// fit `T`'s range. Uses a single AI core.
pub fn scanul1<T, O>(
    spec: &ChipSpec,
    gm: &Arc<GlobalMemory>,
    x: &GlobalTensor<T>,
    s: usize,
) -> SimResult<ScanRun<O>>
where
    T: CubeInput,
    O: Numeric,
{
    if s == 0 || !s.is_multiple_of(16) {
        return Err(SimError::InvalidArgument(format!(
            "ScanUL1: s must be a positive multiple of 16, got {s}"
        )));
    }
    let n = x.len();
    let l = s * s;
    let consts = ScanConstants::<T>::upload(gm, s)?;
    let y = GlobalTensor::<O>::new(gm, n)?;
    let spans = tile_spans(n, l);

    // Tile hand-offs cycle through the chip's cross-core flag registers
    // (per-id FIFO pairs set t with wait t).
    let flag_ids = spec.flag_id_limit;

    let mut report = launch(spec, gm, 1, "ScanUL1", |ctx| {
        let phase = ctx.span_begin("CubeThreeMatmuls");
        {
            let flags = &ctx.flags;
            let cube = &mut ctx.cube;
            // Load U_s, L_s^-, 1_s into L1 once (Line 3).
            let mut l1_u = cube.alloc_local::<T>(ScratchpadKind::L1, l)?;
            let mut l1_lm = cube.alloc_local::<T>(ScratchpadKind::L1, l)?;
            let mut l1_ones = cube.alloc_local::<T>(ScratchpadKind::L1, l)?;
            cube.copy_in(&mut l1_u, 0, &consts.upper, 0, l, &[])?;
            cube.copy_in(&mut l1_lm, 0, &consts.strict_lower, 0, l, &[])?;
            cube.copy_in(&mut l1_ones, 0, &consts.ones, 0, l, &[])?;
            // L1 staging buffer for the cast C1.
            let mut l1_c1 = cube.alloc_local::<T>(ScratchpadKind::L1, l)?;

            // Single L0B buffer, reloaded three times per tile (the
            // serialization the paper's Lines 6/9/11 imply); L0A holds
            // the data tile and is then reused for L^-; two L0C
            // accumulators hold C1 and C2.
            let mut qa = TQue::<T>::new(cube, ScratchpadKind::L0A, 2, l)?.named("qa(L0A)");
            let mut lb = cube.alloc_local::<T>(ScratchpadKind::L0B, l)?;
            let mut c1 = cube.alloc_local::<T::Acc>(ScratchpadKind::L0C, l)?;
            let mut c2 = cube.alloc_local::<T::Acc>(ScratchpadKind::L0C, l)?;

            for (t, &(off, valid)) in spans.iter().enumerate() {
                let tile = cube.span_begin("tile");
                // Load x_l to L0A, zero-padding a partial tile (Line 6).
                let mut la = qa.alloc_tensor()?;
                if valid < l {
                    cube.fill_local(&mut la, 0, l, T::zero())?;
                }
                cube.copy_in(&mut la, 0, x, off, valid, &[])?;

                // C1 = A @ 1_s (Line 7), staged to L1 as T (Line 8).
                cube.copy_local(&mut lb, 0, &l1_ones, 0, l)?;
                cube.mmad::<T>(&mut c1, &mut la, &mut lb, s, s, s, false)?;
                cube.copy_local_cast::<T::Acc, T>(&mut l1_c1, 0, &c1, 0, l)?;

                // C2 = A @ U_s (Lines 9-10); A is free afterwards.
                cube.copy_local(&mut lb, 0, &l1_u, 0, l)?;
                let mm2 = cube.mmad::<T>(&mut c2, &mut la, &mut lb, s, s, s, false)?;
                qa.free_tensor(la, mm2);

                // C2 += L^- @ C1 (Lines 11-12): L^- into L0A, C1 into L0B.
                let mut la2 = qa.alloc_tensor()?;
                cube.copy_local(&mut la2, 0, &l1_lm, 0, l)?;
                cube.copy_local(&mut lb, 0, &l1_c1, 0, l)?;
                let mm3 = cube.mmad::<T>(&mut c2, &mut la2, &mut lb, s, s, s, true)?;
                qa.free_tensor(la2, mm3);

                // Copy C2 to y in GM (Line 13).
                let ev = cube.copy_out_cast::<T::Acc, O>(&y, off, &c2, 0, valid, &[])?;
                cube.span_args(
                    tile,
                    SpanArgs {
                        bytes: (valid * (T::SIZE + O::SIZE)) as u64,
                        kind: "mmad3",
                        queue_depth: 2,
                    },
                );
                cube.span_end_at(tile, ev);
                cube.set_flag(flags, t as u32 % flag_ids, &[ev])?;
            }
            cube.free_local(c2)?;
            cube.free_local(c1)?;
            cube.free_local(lb)?;
            cube.free_local(l1_c1)?;
            cube.free_local(l1_ones)?;
            cube.free_local(l1_lm)?;
            cube.free_local(l1_u)?;
            qa.destroy(cube)?;
        }
        ctx.span_end(phase);

        // ---- Vector core: one partial add per tile (Lines 14-18). ----
        let phase = ctx.span_begin("VecPropagation");
        {
            let flags = &ctx.flags;
            let v = &mut ctx.vecs[0];
            let mut q = TQue::<O>::new(v, ScratchpadKind::Ub, 2, l)?.named("q(UB)");
            let mut partial = O::zero();
            let mut partial_ready = 0;
            for (t, &(off, valid)) in spans.iter().enumerate() {
                let tile = v.span_begin("tile");
                let ready = v.wait_flag(flags, t as u32 % flag_ids)?;
                let mut buf = q.alloc_tensor()?;
                v.copy_in(&mut buf, 0, &y, off, valid, &[ready])?;
                v.vadds(&mut buf, 0, valid, partial, partial_ready)?;
                let (p, pr) = v.extract(&buf, valid - 1)?;
                partial = p;
                partial_ready = pr;
                let ev = v.copy_out(&y, off, &buf, 0, valid, &[])?;
                q.free_tensor(buf, ev);
                v.span_args(
                    tile,
                    SpanArgs {
                        bytes: (2 * valid * O::SIZE) as u64,
                        kind: "vadds",
                        queue_depth: 2,
                    },
                );
                v.span_end_at(tile, ev);
            }
            q.destroy(v)?;
        }
        ctx.span_end(phase);
        Ok(())
    })?;

    finish_report(&mut report, n, T::SIZE, O::SIZE);
    Ok(ScanRun { y, report })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use crate::scanu::scanu;
    use dtypes::F16;

    fn setup() -> (ChipSpec, Arc<GlobalMemory>) {
        let spec = ChipSpec::tiny();
        let gm = Arc::new(GlobalMemory::new(spec.hbm_capacity));
        (spec, gm)
    }

    #[test]
    fn matches_reference_full_tiles() {
        let (spec, gm) = setup();
        // Keep |row sums| <= 127 so the C1 cast to i8 is exact: values
        // in {-2..2} over s=16 rows give |row sum| <= 32.
        let data: Vec<i8> = (0..512).map(|i| (i % 5) as i8 - 2).collect();
        let x = GlobalTensor::from_slice(&gm, &data).unwrap();
        let run = scanul1::<i8, i32>(&spec, &gm, &x, 16).unwrap();
        assert_eq!(
            run.y.to_vec(),
            reference::inclusive_widening::<i8, i32>(&data)
        );
    }

    #[test]
    fn matches_reference_partial_tail() {
        let (spec, gm) = setup();
        let data: Vec<i8> = (0..777).map(|i| ((i * 3) % 4) as i8 - 1).collect();
        let x = GlobalTensor::from_slice(&gm, &data).unwrap();
        let run = scanul1::<i8, i32>(&spec, &gm, &x, 16).unwrap();
        assert_eq!(
            run.y.to_vec(),
            reference::inclusive_widening::<i8, i32>(&data)
        );
    }

    #[test]
    fn fp16_small_values() {
        let (spec, gm) = setup();
        let data: Vec<F16> = (0..600).map(|i| F16::from_f32((i % 3) as f32)).collect();
        let x = GlobalTensor::from_slice(&gm, &data).unwrap();
        let run = scanul1::<F16, F16>(&spec, &gm, &x, 16).unwrap();
        assert_eq!(run.y.to_vec(), reference::inclusive(&data));
    }

    #[test]
    fn agrees_with_scanu() {
        let (spec, gm) = setup();
        let data: Vec<i8> = (0..1500).map(|i| ((i * 11) % 7) as i8 - 3).collect();
        let x = GlobalTensor::from_slice(&gm, &data).unwrap();
        let a = scanu::<i8, i32>(&spec, &gm, &x, 16).unwrap();
        let b = scanul1::<i8, i32>(&spec, &gm, &x, 16).unwrap();
        assert_eq!(a.y.to_vec(), b.y.to_vec());
    }

    #[test]
    fn faster_than_scanu_at_large_n() {
        // The paper's headline single-core result: ScanUL1 ≈ 2× ScanU.
        let spec = ChipSpec::ascend_910b4();
        let gm = Arc::new(GlobalMemory::new(spec.hbm_capacity));
        let n = 1 << 20;
        let data: Vec<i8> = vec![1i8; n];
        let x = GlobalTensor::from_slice(&gm, &data).unwrap();
        let u = scanu::<i8, i32>(&spec, &gm, &x, 128).unwrap();
        let ul1 = scanul1::<i8, i32>(&spec, &gm, &x, 128).unwrap();
        let ratio = u.report.time_s() / ul1.report.time_s();
        assert!(
            ratio > 1.5 && ratio < 4.0,
            "ScanUL1 should be ~2x faster than ScanU, got {ratio:.2}x"
        );
    }

    #[test]
    fn rejects_bad_tile_size() {
        let (spec, gm) = setup();
        let x = GlobalTensor::from_slice(&gm, &[1i8, 2, 3]).unwrap();
        assert!(scanul1::<i8, i32>(&spec, &gm, &x, 7).is_err());
    }
}
