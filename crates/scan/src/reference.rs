//! Exact sequential reference scans used by tests and by the operator
//! crates to validate kernel output.

use dtypes::Numeric;

/// Sequential inclusive scan in the element type's own arithmetic.
pub fn inclusive<T: Numeric>(x: &[T]) -> Vec<T> {
    let mut out = Vec::with_capacity(x.len());
    let mut acc = T::zero();
    for &v in x {
        acc = acc.add(v);
        out.push(acc);
    }
    out
}

/// Sequential exclusive scan in the element type's own arithmetic:
/// `out[0] = 0`, `out[i] = x[0] + … + x[i-1]`.
pub fn exclusive<T: Numeric>(x: &[T]) -> Vec<T> {
    let mut out = Vec::with_capacity(x.len());
    let mut acc = T::zero();
    for &v in x {
        out.push(acc);
        acc = acc.add(v);
    }
    out
}

/// Inclusive scan of a widening input: accumulates in `Acc` (e.g. `u8`
/// mask counted in `i32`), matching the cube engine's int8→int32 path.
pub fn inclusive_widening<T, A>(x: &[T]) -> Vec<A>
where
    T: Numeric,
    A: Numeric,
{
    let mut out = Vec::with_capacity(x.len());
    let mut acc = A::zero();
    for &v in x {
        acc = acc.add(A::from_f64(v.to_f64()));
        out.push(acc);
    }
    out
}

/// Exclusive scan of a widening input.
pub fn exclusive_widening<T, A>(x: &[T]) -> Vec<A>
where
    T: Numeric,
    A: Numeric,
{
    let mut out = Vec::with_capacity(x.len());
    let mut acc = A::zero();
    for &v in x {
        out.push(acc);
        acc = acc.add(A::from_f64(v.to_f64()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtypes::F16;

    #[test]
    fn inclusive_basic() {
        assert_eq!(inclusive(&[1i32, 2, 3, 4]), vec![1, 3, 6, 10]);
        assert_eq!(inclusive::<i32>(&[]), Vec::<i32>::new());
        assert_eq!(inclusive(&[5i32]), vec![5]);
    }

    #[test]
    fn exclusive_basic() {
        assert_eq!(exclusive(&[1i32, 2, 3, 4]), vec![0, 1, 3, 6]);
        assert_eq!(exclusive(&[7i32]), vec![0]);
    }

    #[test]
    fn exclusive_is_shifted_inclusive() {
        let x = [3i32, 1, 4, 1, 5, 9, 2, 6];
        let inc = inclusive(&x);
        let exc = exclusive(&x);
        assert_eq!(exc[0], 0);
        assert_eq!(&exc[1..], &inc[..x.len() - 1]);
    }

    #[test]
    fn widening_counts_mask() {
        let mask = [1u8, 0, 1, 1, 0, 1];
        let inc: Vec<i32> = inclusive_widening(&mask);
        assert_eq!(inc, vec![1, 1, 2, 3, 3, 4]);
        let exc: Vec<i32> = exclusive_widening(&mask);
        assert_eq!(exc, vec![0, 1, 1, 2, 3, 3]);
    }

    #[test]
    fn f16_scan_small_integers_is_exact() {
        let x: Vec<F16> = (1..=100).map(|i| F16::from_f32((i % 4) as f32)).collect();
        let scanned = inclusive(&x);
        let mut acc = 0f32;
        for (i, v) in x.iter().enumerate() {
            acc += v.to_f32();
            assert_eq!(scanned[i].to_f32(), acc, "exact while sums <= 2048");
        }
    }

    #[test]
    fn wrapping_integer_scan() {
        let x = [200u8, 100, 50];
        assert_eq!(inclusive(&x), vec![200, 44, 94]);
    }
}
