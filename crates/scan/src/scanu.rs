//! **ScanU** (Algorithm 1): the cube-vector single-core scan.
//!
//! Per `ℓ = s²` tile, the cube core computes `C = A @ U_s` — `s`
//! consecutive local scans of `s`-rows — with a single matmul and writes
//! the tile to global memory. A vector core then propagates the running
//! partial sum through the tile, one `s`-row at a time: it broadcasts the
//! partial onto the row (`Adds`) and extracts the row's new last element
//! as the next partial. The whole loop is pipelined with depth-2 queues
//! (double buffering), exactly as in the paper's Figure 2.

use crate::triangular::ScanConstants;
use crate::util::tile_spans;
use crate::{finish_report, ScanRun};
use ascend_sim::mem::GlobalMemory;
use ascendc::{
    launch, ChipSpec, GlobalTensor, ScratchpadKind, SimError, SimResult, SpanArgs, TQue,
};
use dtypes::{CubeInput, Numeric};
use std::sync::Arc;

/// Runs ScanU over `x` with tile dimension `s`, producing the inclusive
/// scan in element type `O` (the FIXP pipe casts the cube's accumulator
/// output — f32 for fp16 inputs, i32 for int8 — to `O` on the way out).
///
/// Uses a single AI core: one cube core and one vector core, as in the
/// paper's single-core evaluation (Fig. 3).
pub fn scanu<T, O>(
    spec: &ChipSpec,
    gm: &Arc<GlobalMemory>,
    x: &GlobalTensor<T>,
    s: usize,
) -> SimResult<ScanRun<O>>
where
    T: CubeInput,
    O: Numeric,
{
    if s == 0 || !s.is_multiple_of(16) {
        return Err(SimError::InvalidArgument(format!(
            "ScanU: s must be a positive multiple of 16, got {s}"
        )));
    }
    let n = x.len();
    let l = s * s;
    let consts = ScanConstants::<T>::upload(gm, s)?;
    let y = GlobalTensor::<O>::new(gm, n)?;
    let spans = tile_spans(n, l);

    // Tile hand-offs cycle through the chip's cross-core flag registers;
    // the per-id FIFO pairs the cube's t-th set with the vector core's
    // t-th wait even when the cube runs several tiles ahead.
    let flag_ids = spec.flag_id_limit;

    let mut report = launch(spec, gm, 1, "ScanU", |ctx| {
        // ---- Cube core: local row scans per tile (Lines 4-8). ----
        let phase = ctx.span_begin("CubeLocalScans");
        {
            let flags = &ctx.flags;
            let cube = &mut ctx.cube;
            // Load U_s in L0B once (Line 3).
            let mut lb = cube.alloc_local::<T>(ScratchpadKind::L0B, s * s)?;
            cube.copy_in(&mut lb, 0, &consts.upper, 0, s * s, &[])?;

            let da = if 2 * l * T::SIZE <= cube.spec().l0a_capacity {
                2
            } else {
                1
            };
            let dc = if 2 * l * <T::Acc as dtypes::Element>::SIZE <= cube.spec().l0c_capacity {
                2
            } else {
                1
            };
            let mut qa = TQue::<T>::new(cube, ScratchpadKind::L0A, da, l)?.named("qa(L0A)");
            let mut qc = TQue::<T::Acc>::new(cube, ScratchpadKind::L0C, dc, l)?.named("qc(L0C)");
            for (t, &(off, valid)) in spans.iter().enumerate() {
                let rows = valid.div_ceil(s);
                let tile = cube.span_begin("tile");
                let mut la = qa.alloc_tensor()?;
                if valid < rows * s {
                    // Zero-pad the recycled buffer's tail row.
                    cube.fill_local(&mut la, 0, rows * s, T::zero())?;
                }
                cube.copy_in(&mut la, 0, x, off, valid, &[])?;
                let mut lc = qc.alloc_tensor()?;
                let mm = cube.mmad::<T>(&mut lc, &mut la, &mut lb, rows, s, s, false)?;
                qa.free_tensor(la, mm);
                let ev = cube.copy_out_cast::<T::Acc, O>(&y, off, &lc, 0, valid, &[])?;
                qc.free_tensor(lc, ev);
                cube.span_args(
                    tile,
                    SpanArgs {
                        bytes: (valid * (T::SIZE + O::SIZE)) as u64,
                        kind: "mmad",
                        queue_depth: da as u32,
                    },
                );
                cube.span_end_at(tile, ev);
                cube.set_flag(flags, t as u32 % flag_ids, &[ev])?;
            }
            cube.free_local(lb)?;
            qa.destroy(cube)?;
            qc.destroy(cube)?;
        }
        ctx.span_end(phase);

        // ---- Vector core: partial-sum propagation (Lines 9-15). ----
        let phase = ctx.span_begin("VecPropagation");
        {
            let flags = &ctx.flags;
            let v = &mut ctx.vecs[0];
            let mut q = TQue::<O>::new(v, ScratchpadKind::Ub, 2, l)?.named("q(UB)");
            let mut partial = O::zero();
            let mut partial_ready = 0;
            // Software-pipelined double buffering: the wait + load for
            // tile t+1 issue before tile t's row chain, so the MTE2
            // transfer overlaps the propagation work instead of queuing
            // behind it on the scalar pipe.
            let fetch = |v: &mut ascendc::Core<'_>, q: &mut TQue<O>, t: usize| {
                let (off, valid) = spans[t];
                let ready = v.wait_flag(flags, t as u32 % flag_ids)?;
                let mut buf = q.alloc_tensor()?;
                v.copy_in(&mut buf, 0, &y, off, valid, &[ready])?;
                SimResult::Ok(buf)
            };
            let mut pending = if spans.is_empty() {
                None
            } else {
                Some(fetch(v, &mut q, 0)?)
            };
            for (t, &(off, valid)) in spans.iter().enumerate() {
                let tile = v.span_begin("tile");
                let mut buf = pending.take().expect("tile t was prefetched");
                if t + 1 < spans.len() {
                    pending = Some(fetch(v, &mut q, t + 1)?);
                }
                for (row_off, row_len) in tile_spans(valid, s) {
                    v.vadds(&mut buf, row_off, row_len, partial, partial_ready)?;
                    let (p, pr) = v.extract(&buf, row_off + row_len - 1)?;
                    partial = p;
                    partial_ready = pr;
                }
                let ev = v.copy_out(&y, off, &buf, 0, valid, &[])?;
                q.free_tensor(buf, ev);
                v.span_args(
                    tile,
                    SpanArgs {
                        bytes: (2 * valid * O::SIZE) as u64,
                        kind: "vadds",
                        queue_depth: 2,
                    },
                );
                v.span_end_at(tile, ev);
            }
            q.destroy(v)?;
        }
        ctx.span_end(phase);
        Ok(())
    })?;

    finish_report(&mut report, n, T::SIZE, O::SIZE);
    Ok(ScanRun { y, report })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use dtypes::F16;

    fn setup() -> (ChipSpec, Arc<GlobalMemory>) {
        let spec = ChipSpec::tiny();
        let gm = Arc::new(GlobalMemory::new(spec.hbm_capacity));
        (spec, gm)
    }

    #[test]
    fn scans_exact_multiple_of_tile() {
        let (spec, gm) = setup();
        let data: Vec<i8> = (0..512).map(|i| (i % 5) as i8 - 2).collect();
        let x = GlobalTensor::from_slice(&gm, &data).unwrap();
        let run = scanu::<i8, i32>(&spec, &gm, &x, 16).unwrap();
        assert_eq!(
            run.y.to_vec(),
            reference::inclusive_widening::<i8, i32>(&data)
        );
        assert_eq!(run.report.elements, 512);
    }

    #[test]
    fn scans_with_partial_tail_tile() {
        let (spec, gm) = setup();
        // 16*16 = 256-element tiles; 600 = 2 full tiles + 88 tail.
        let data: Vec<i8> = (0..600).map(|i| ((i * 7) % 11) as i8 - 5).collect();
        let x = GlobalTensor::from_slice(&gm, &data).unwrap();
        let run = scanu::<i8, i32>(&spec, &gm, &x, 16).unwrap();
        assert_eq!(
            run.y.to_vec(),
            reference::inclusive_widening::<i8, i32>(&data)
        );
    }

    #[test]
    fn scans_tail_shorter_than_one_row() {
        let (spec, gm) = setup();
        let data: Vec<i8> = (0..260).map(|i| (i % 3) as i8).collect();
        let x = GlobalTensor::from_slice(&gm, &data).unwrap();
        let run = scanu::<i8, i32>(&spec, &gm, &x, 16).unwrap();
        assert_eq!(
            run.y.to_vec(),
            reference::inclusive_widening::<i8, i32>(&data)
        );
    }

    #[test]
    fn fp16_scan_small_values_exact() {
        let (spec, gm) = setup();
        // Values 0..3, total sum < 2048: every partial sum is exact in f16.
        let data: Vec<F16> = (0..700).map(|i| F16::from_f32((i % 4) as f32)).collect();
        let x = GlobalTensor::from_slice(&gm, &data).unwrap();
        let run = scanu::<F16, F16>(&spec, &gm, &x, 16).unwrap();
        assert_eq!(run.y.to_vec(), reference::inclusive(&data));
    }

    #[test]
    fn mask_scan_int8_to_i32() {
        let (spec, gm) = setup();
        let data: Vec<u8> = (0..1000).map(|i| ((i * 13) % 3 == 0) as u8).collect();
        let x = GlobalTensor::from_slice(&gm, &data).unwrap();
        let run = scanu::<u8, i32>(&spec, &gm, &x, 16).unwrap();
        assert_eq!(
            run.y.to_vec(),
            reference::inclusive_widening::<u8, i32>(&data)
        );
    }

    #[test]
    fn rejects_bad_tile_size() {
        let (spec, gm) = setup();
        let x = GlobalTensor::from_slice(&gm, &[1i8, 2, 3]).unwrap();
        assert!(scanu::<i8, i32>(&spec, &gm, &x, 0).is_err());
        assert!(scanu::<i8, i32>(&spec, &gm, &x, 20).is_err());
    }

    #[test]
    fn report_has_sane_metrics() {
        let (spec, gm) = setup();
        let data = vec![1i8; 2048];
        let x = GlobalTensor::from_slice(&gm, &data).unwrap();
        let run = scanu::<i8, i32>(&spec, &gm, &x, 16).unwrap();
        let r = &run.report;
        assert_eq!(r.blocks, 1);
        assert!(r.cycles > spec.launch_cycles);
        // Traffic: >= x read by cube (N) + y written by cube (4N) +
        // y read and written by vector (8N).
        assert!(r.bytes_read >= 2048 + 8192);
        assert!(r.bytes_written >= 8192 + 8192);
        assert!(r.gbps() > 0.0);
        assert_eq!(r.useful_bytes, 2048 * (1 + 4));
    }

    #[test]
    fn empty_input() {
        let (spec, gm) = setup();
        let x = GlobalTensor::<i8>::new(&gm, 0).unwrap();
        let run = scanu::<i8, i32>(&spec, &gm, &x, 16).unwrap();
        assert_eq!(run.report.elements, 0);
    }
}
