//! Ablations of MCScan's design choice — the **partial recomputation**
//! strategy the paper highlights as novel (§2.1/§4.3).
//!
//! MCScan's phase 1 has the vector cores *recompute* block reductions
//! directly from the input while the cube cores produce tile-local
//! scans, so neither engine waits for the other. The classic strategies
//! it competes with are implemented here as drop-in variants:
//!
//! * [`McScanVariant::StridedTotals`] — instead of recomputing, the
//!   vector cores read the *last element of every `s`-row* of the cube's
//!   tile-local scans (those are the row totals). This halves the
//!   logical phase-1 read volume but (a) serializes the vector cores
//!   behind the cube output and (b) is a strided, line-granularity
//!   access pattern: each 2-byte element drags a whole GM line.
//! * [`McScanVariant::SsaFull`] — textbook Scan-Scan-Add: phase 1
//!   computes *complete* per-block scans (cube local scans + vector
//!   propagation), phase 2 broadcast-adds the scanned block totals.
//!   ≈ 6·N element accesses vs MCScan's 5·N.
//! * [`McScanVariant::Rss`] — Reduce-Scan-Scan: phase 1 only reduces
//!   blocks (vector), phase 2 performs the full local scan + offset.
//!   Same 5·N traffic as MCScan, but phase 1 leaves the cube idle and
//!   phase 2 re-serializes cube → vector per tile.
//!
//! The `figures ablation` experiment compares all four. In the model,
//! the recomputing MCScan beats SSA everywhere (less traffic) and stays
//! within ~10% of RSS, which moves the same ~10 bytes/element. Every
//! per-tile cube→vector hand-off is an explicit, *priced*
//! `CrossCoreSetFlag`/`CrossCoreWaitFlag` pair (`flag_set_cycles` on the
//! producer, `flag_wait_cycles` plus the observed skew on the consumer)
//! rather than a free timestamp edge — the cost §3.1 warns about ("each
//! data transfer between the AIC and AIV cores might be expensive") and
//! precisely what the paper's recomputation strategy avoids paying per
//! tile.

use crate::mcscan::{mcscan, McScanConfig, ScanKind};
use crate::triangular::ScanConstants;
use crate::util::{partition, tile_spans};
use crate::{finish_report, ScanRun};
use ascend_sim::mem::GlobalMemory;
use ascendc::{launch, ChipSpec, GlobalTensor, ScratchpadKind, SimError, SimResult, TQue};
use dtypes::{CubeInput, Element, Numeric};
use std::sync::Arc;

/// Which multi-core scan strategy to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum McScanVariant {
    /// The paper's MCScan: vector cores recompute block reductions from
    /// the input, fully overlapped with the cube cores.
    Recompute,
    /// Block totals gathered from the cube output's row-total column
    /// (strided reads, serialized behind the cube).
    StridedTotals,
    /// Textbook Scan-Scan-Add: complete block scans in phase 1, then a
    /// broadcast add.
    SsaFull,
    /// Reduce-Scan-Scan: reduce-only phase 1, full scan in phase 2.
    Rss,
}

impl McScanVariant {
    /// All variants, for sweeps.
    pub const ALL: [McScanVariant; 4] = [
        McScanVariant::Recompute,
        McScanVariant::StridedTotals,
        McScanVariant::SsaFull,
        McScanVariant::Rss,
    ];

    /// Display label.
    pub const fn name(self) -> &'static str {
        match self {
            McScanVariant::Recompute => "MCScan(recompute)",
            McScanVariant::StridedTotals => "strided-totals",
            McScanVariant::SsaFull => "SSA(full)",
            McScanVariant::Rss => "RSS",
        }
    }
}

/// Runs the chosen multi-core scan strategy (inclusive scan only — the
/// ablation compares phase structures, not output conventions).
pub fn mcscan_variant<T, M, O>(
    spec: &ChipSpec,
    gm: &Arc<GlobalMemory>,
    x: &GlobalTensor<T>,
    cfg: McScanConfig,
    variant: McScanVariant,
) -> SimResult<ScanRun<O>>
where
    T: CubeInput,
    M: Numeric,
    O: Numeric,
{
    if cfg.kind != ScanKind::Inclusive {
        return Err(SimError::InvalidArgument(
            "ablation variants implement inclusive scans only".into(),
        ));
    }
    match variant {
        McScanVariant::Recompute => mcscan::<T, M, O>(spec, gm, x, cfg),
        McScanVariant::StridedTotals => strided_totals::<T, M, O>(spec, gm, x, cfg),
        McScanVariant::SsaFull => ssa_full::<T, M, O>(spec, gm, x, cfg),
        McScanVariant::Rss => rss::<T, M, O>(spec, gm, x, cfg),
    }
}

fn check_cfg(spec: &ChipSpec, cfg: &McScanConfig) -> SimResult<()> {
    if cfg.s == 0 || !cfg.s.is_multiple_of(16) {
        return Err(SimError::InvalidArgument(format!(
            "s must be a positive multiple of 16, got {}",
            cfg.s
        )));
    }
    if cfg.blocks == 0 || cfg.blocks > spec.ai_cores {
        return Err(SimError::InvalidArgument(format!(
            "blocks {} out of range 1..={}",
            cfg.blocks, spec.ai_cores
        )));
    }
    Ok(())
}

/// Shared phase-2 propagation (identical to MCScan's): per chunk, scan
/// the reduction array's prefix in UB and walk the tiles row by row.
#[allow(clippy::too_many_arguments)]
fn propagate_chunk<M, O>(
    vc: &mut ascendc::Core<'_>,
    w: &GlobalTensor<M>,
    y: &GlobalTensor<O>,
    r: &GlobalTensor<O>,
    chunk: usize,
    chunks_total: usize,
    tiles: &[(usize, usize)],
    s: usize,
    l: usize,
) -> SimResult<()>
where
    M: Numeric,
    O: Numeric,
{
    let mut r_ub = vc.alloc_local::<O>(ScratchpadKind::Ub, chunks_total)?;
    vc.copy_in(&mut r_ub, 0, r, 0, chunks_total, &[])?;
    let (mut partial, mut partial_ready) = if chunk == 0 {
        (O::zero(), 0)
    } else {
        vc.reduce_sum(&r_ub, 0, chunk)?
    };
    vc.free_local(r_ub)?;

    let ub = vc.spec().ub_capacity;
    let depth = if 2 * l * M::SIZE + l * O::SIZE + 64 <= ub {
        2
    } else {
        1
    };
    let mut q = TQue::<M>::new(vc, ScratchpadKind::Ub, depth, l)?;
    let mut buf = vc.alloc_local::<O>(ScratchpadKind::Ub, l)?;
    for &(off, valid) in tiles {
        let mut piece = q.alloc_tensor()?;
        vc.copy_in(&mut piece, 0, w, off, valid, &[])?;
        let cast_done = vc.vcast::<M, O>(&mut buf, &piece, 0, valid)?;
        q.free_tensor(piece, cast_done);
        for (row_off, row_len) in tile_spans(valid, s) {
            vc.vadds(&mut buf, row_off, row_len, partial, partial_ready)?;
            let (p, pr) = vc.extract(&buf, row_off + row_len - 1)?;
            partial = p;
            partial_ready = pr;
        }
        vc.copy_out(y, off, &buf, 0, valid, &[])?;
    }
    vc.free_local(buf)?;
    q.destroy(vc)?;
    Ok(())
}

/// Cube phase shared by all variants: tile-local scans into `w`.
///
/// Publishes a `CrossCoreSetFlag` per tile when its `w` slice lands in
/// GM and returns the flag ids; the vector side pays a matching
/// `CrossCoreWaitFlag` before reading. The flag file models the chip's
/// small register space (`ChipSpec::flag_id_limit`), so the tile index
/// cycles through it; each id is a FIFO, pairing the cube's i-th set
/// with the i-th wait even when tiles outnumber registers.
#[allow(clippy::too_many_arguments)]
fn cube_tile_scans<T, M>(
    cube: &mut ascendc::Core<'_>,
    flags: &ascendc::FlagFile,
    consts: &ScanConstants<T>,
    x: &GlobalTensor<T>,
    w: &GlobalTensor<M>,
    tiles: &[(usize, usize)],
    s: usize,
    l: usize,
) -> SimResult<Vec<u32>>
where
    T: CubeInput,
    M: Numeric,
{
    let mut lb = cube.alloc_local::<T>(ScratchpadKind::L0B, l)?;
    cube.copy_in(&mut lb, 0, &consts.upper, 0, l, &[])?;
    let da = if 2 * l * T::SIZE <= cube.spec().l0a_capacity {
        2
    } else {
        1
    };
    let dc = if 2 * l * <T::Acc as Element>::SIZE <= cube.spec().l0c_capacity {
        2
    } else {
        1
    };
    let mut qa = TQue::<T>::new(cube, ScratchpadKind::L0A, da, l)?;
    let mut qc = TQue::<T::Acc>::new(cube, ScratchpadKind::L0C, dc, l)?;
    let mut ids = Vec::with_capacity(tiles.len());
    for (i, &(off, valid)) in tiles.iter().enumerate() {
        let rows = valid.div_ceil(s);
        let mut la = qa.alloc_tensor()?;
        if valid < rows * s {
            cube.fill_local(&mut la, 0, rows * s, T::zero())?;
        }
        cube.copy_in(&mut la, 0, x, off, valid, &[])?;
        let mut lc = qc.alloc_tensor()?;
        let mm = cube.mmad::<T>(&mut lc, &mut la, &mut lb, rows, s, s, false)?;
        qa.free_tensor(la, mm);
        let ev = cube.copy_out_cast::<T::Acc, M>(w, off, &lc, 0, valid, &[])?;
        qc.free_tensor(lc, ev);
        let id = i as u32 % flags.limit();
        cube.set_flag(flags, id, &[ev])?;
        ids.push(id);
    }
    qa.destroy(cube)?;
    qc.destroy(cube)?;
    cube.free_local(lb)?;
    Ok(ids)
}

/// Strided-totals variant: block totals come from the cube output.
fn strided_totals<T, M, O>(
    spec: &ChipSpec,
    gm: &Arc<GlobalMemory>,
    x: &GlobalTensor<T>,
    cfg: McScanConfig,
) -> SimResult<ScanRun<O>>
where
    T: CubeInput,
    M: Numeric,
    O: Numeric,
{
    check_cfg(spec, &cfg)?;
    let (n, s, l) = (x.len(), cfg.s, cfg.s * cfg.s);
    let consts = ScanConstants::<T>::upload(gm, s)?;
    let y = GlobalTensor::<O>::new(gm, n)?;
    let w = GlobalTensor::<M>::new(gm, n)?;
    let chunks_total = (cfg.blocks * spec.vec_per_core) as usize;
    let tiles = tile_spans(n, l);
    let chunk_tiles = partition(tiles.len(), chunks_total);
    let r = GlobalTensor::<O>::new(gm, chunks_total)?;

    let mut report = launch(spec, gm, cfg.blocks, "MCScan(strided-totals)", |ctx| {
        let block = ctx.block_idx as usize;
        let vec_per_core = ctx.vecs.len();
        // Phase 1a: cube tile scans (per-tile completion events kept).
        let my_tiles_range = {
            let (t0, _) = chunk_tiles[block * vec_per_core];
            let (tl, tc) = chunk_tiles[block * vec_per_core + vec_per_core - 1];
            (t0, tl + tc)
        };
        let tile_flags = cube_tile_scans::<T, M>(
            &mut ctx.cube,
            &ctx.flags,
            &consts,
            x,
            &w,
            &tiles[my_tiles_range.0..my_tiles_range.1],
            s,
            l,
        )?;
        // Phase 1b: each vector core gathers its chunk's row totals from
        // w with a strided read (one element every s), then reduces.
        for v in 0..vec_per_core {
            let chunk = block * vec_per_core + v;
            let (t0, tcount) = chunk_tiles[chunk];
            let flags = &ctx.flags;
            let vc = &mut ctx.vecs[v];
            let mut totals = vc.alloc_local::<M>(ScratchpadKind::Ub, l / s)?;
            let mut totals_o = vc.alloc_local::<O>(ScratchpadKind::Ub, l / s)?;
            let mut total = O::zero();
            let mut total_ready = 0;
            for (ti, &(off, valid)) in tiles[t0..t0 + tcount].iter().enumerate() {
                let rows = valid.div_ceil(s);
                let full_rows = valid / s;
                // Strided gather: last element of each complete s-row.
                // A priced CrossCoreWaitFlag blocks this vector core
                // until the cube has produced the tile.
                let dep = vc.wait_flag(flags, tile_flags[t0 - my_tiles_range.0 + ti])?;
                if full_rows > 0 {
                    vc.copy_in_2d(&mut totals, &w, off + s - 1, full_rows, 1, s, &[dep])?;
                }
                // A short tail row contributes its own last element.
                if valid > full_rows * s {
                    let mut one = vc.alloc_local::<M>(ScratchpadKind::Ub, 1)?;
                    vc.copy_in(&mut one, 0, &w, off + valid - 1, 1, &[dep])?;
                    let (last, lr) = vc.extract(&one, 0)?;
                    vc.insert(&mut totals, rows - 1, last, lr)?;
                    vc.free_local(one)?;
                }
                let cast_done = vc.vcast::<M, O>(&mut totals_o, &totals, 0, rows)?;
                let (sum, ready) = vc.reduce_sum(&totals_o, 0, rows)?;
                total = total.add(sum);
                total_ready = vc.scalar_ops(1, &[ready, total_ready, cast_done])?;
            }
            let mut one = vc.alloc_local::<O>(ScratchpadKind::Ub, 1)?;
            vc.insert(&mut one, 0, total, total_ready)?;
            vc.copy_out(&r, chunk, &one, 0, 1, &[])?;
            vc.free_local(one)?;
            vc.free_local(totals)?;
            vc.free_local(totals_o)?;
        }
        ctx.sync_all()?;
        // Phase 2: identical propagation.
        for v in 0..vec_per_core {
            let chunk = block * vec_per_core + v;
            let (t0, tcount) = chunk_tiles[chunk];
            propagate_chunk::<M, O>(
                &mut ctx.vecs[v],
                &w,
                &y,
                &r,
                chunk,
                chunks_total,
                &tiles[t0..t0 + tcount],
                s,
                l,
            )?;
        }
        Ok(())
    })?;
    finish_report(&mut report, n, T::SIZE, O::SIZE);
    Ok(ScanRun { y, report })
}

/// Textbook SSA: full per-chunk scans in phase 1, broadcast add after.
fn ssa_full<T, M, O>(
    spec: &ChipSpec,
    gm: &Arc<GlobalMemory>,
    x: &GlobalTensor<T>,
    cfg: McScanConfig,
) -> SimResult<ScanRun<O>>
where
    T: CubeInput,
    M: Numeric,
    O: Numeric,
{
    check_cfg(spec, &cfg)?;
    let (n, s, l) = (x.len(), cfg.s, cfg.s * cfg.s);
    let consts = ScanConstants::<T>::upload(gm, s)?;
    let y = GlobalTensor::<O>::new(gm, n)?;
    let w = GlobalTensor::<M>::new(gm, n)?;
    let chunks_total = (cfg.blocks * spec.vec_per_core) as usize;
    let tiles = tile_spans(n, l);
    let chunk_tiles = partition(tiles.len(), chunks_total);
    let r = GlobalTensor::<O>::new(gm, chunks_total)?;

    let mut report = launch(spec, gm, cfg.blocks, "SSA(full)", |ctx| {
        let block = ctx.block_idx as usize;
        let vec_per_core = ctx.vecs.len();
        let first = block * vec_per_core;
        let (t0, _) = chunk_tiles[first];
        let (tl, tc) = chunk_tiles[first + vec_per_core - 1];
        let tile_flags = cube_tile_scans::<T, M>(
            &mut ctx.cube,
            &ctx.flags,
            &consts,
            x,
            &w,
            &tiles[t0..tl + tc],
            s,
            l,
        )?;
        // Phase 1b: full chunk-local scan (rows propagated from zero),
        // written to y; chunk total goes to r.
        for v in 0..vec_per_core {
            let chunk = first + v;
            let (c0, ccount) = chunk_tiles[chunk];
            let flags = &ctx.flags;
            let vc = &mut ctx.vecs[v];
            let ub = vc.spec().ub_capacity;
            let depth = if 2 * l * M::SIZE + l * O::SIZE + 64 <= ub {
                2
            } else {
                1
            };
            let mut q = TQue::<M>::new(vc, ScratchpadKind::Ub, depth, l)?;
            let mut buf = vc.alloc_local::<O>(ScratchpadKind::Ub, l)?;
            let mut partial = O::zero();
            let mut partial_ready = 0;
            for (ti, &(off, valid)) in tiles[c0..c0 + ccount].iter().enumerate() {
                let dep = vc.wait_flag(flags, tile_flags[c0 - t0 + ti])?;
                let mut piece = q.alloc_tensor()?;
                vc.copy_in(&mut piece, 0, &w, off, valid, &[dep])?;
                let cast_done = vc.vcast::<M, O>(&mut buf, &piece, 0, valid)?;
                q.free_tensor(piece, cast_done);
                for (row_off, row_len) in tile_spans(valid, s) {
                    vc.vadds(&mut buf, row_off, row_len, partial, partial_ready)?;
                    let (p, pr) = vc.extract(&buf, row_off + row_len - 1)?;
                    partial = p;
                    partial_ready = pr;
                }
                vc.copy_out(&y, off, &buf, 0, valid, &[])?;
            }
            let mut one = vc.alloc_local::<O>(ScratchpadKind::Ub, 1)?;
            vc.insert(&mut one, 0, partial, partial_ready)?;
            vc.copy_out(&r, chunk, &one, 0, 1, &[])?;
            vc.free_local(one)?;
            vc.free_local(buf)?;
            q.destroy(vc)?;
        }
        ctx.sync_all()?;
        // Phase 2: broadcast-add the scanned chunk offsets (uniform per
        // chunk — one Adds per tile, no per-row chain).
        for v in 0..vec_per_core {
            let chunk = first + v;
            if chunk == 0 {
                continue; // chunk 0 needs no offset
            }
            let (c0, ccount) = chunk_tiles[chunk];
            let vc = &mut ctx.vecs[v];
            let mut r_ub = vc.alloc_local::<O>(ScratchpadKind::Ub, chunks_total)?;
            vc.copy_in(&mut r_ub, 0, &r, 0, chunks_total, &[])?;
            let (offset, offset_ready) = vc.reduce_sum(&r_ub, 0, chunk)?;
            vc.free_local(r_ub)?;
            let depth = if 3 * l * O::SIZE + 64 <= vc.spec().ub_capacity {
                2
            } else {
                1
            };
            let mut q = TQue::<O>::new(vc, ScratchpadKind::Ub, depth, l)?;
            for &(off, valid) in &tiles[c0..c0 + ccount] {
                let mut buf = q.alloc_tensor()?;
                vc.copy_in(&mut buf, 0, &y, off, valid, &[])?;
                vc.vadds(&mut buf, 0, valid, offset, offset_ready)?;
                let ev = vc.copy_out(&y, off, &buf, 0, valid, &[])?;
                q.free_tensor(buf, ev);
            }
            q.destroy(vc)?;
        }
        Ok(())
    })?;
    finish_report(&mut report, n, T::SIZE, O::SIZE);
    Ok(ScanRun { y, report })
}

/// Reduce-Scan-Scan: phase 1 reduces only; phase 2 does everything else.
fn rss<T, M, O>(
    spec: &ChipSpec,
    gm: &Arc<GlobalMemory>,
    x: &GlobalTensor<T>,
    cfg: McScanConfig,
) -> SimResult<ScanRun<O>>
where
    T: CubeInput,
    M: Numeric,
    O: Numeric,
{
    check_cfg(spec, &cfg)?;
    let (n, s, l) = (x.len(), cfg.s, cfg.s * cfg.s);
    let consts = ScanConstants::<T>::upload(gm, s)?;
    let y = GlobalTensor::<O>::new(gm, n)?;
    let w = GlobalTensor::<M>::new(gm, n)?;
    let chunks_total = (cfg.blocks * spec.vec_per_core) as usize;
    let tiles = tile_spans(n, l);
    let chunk_tiles = partition(tiles.len(), chunks_total);
    let r = GlobalTensor::<O>::new(gm, chunks_total)?;

    let mut report = launch(spec, gm, cfg.blocks, "RSS", |ctx| {
        let block = ctx.block_idx as usize;
        let vec_per_core = ctx.vecs.len();
        // Phase 1: block reductions only (the cube sits idle — RSS's
        // structural drawback on a split architecture).
        for v in 0..vec_per_core {
            let chunk = block * vec_per_core + v;
            let (t0, tcount) = chunk_tiles[chunk];
            let vc = &mut ctx.vecs[v];
            let din = if 2 * l * T::SIZE + l * O::SIZE + 64 <= vc.spec().ub_capacity {
                2
            } else {
                1
            };
            let mut qin = TQue::<T>::new(vc, ScratchpadKind::Ub, din, l)?;
            let mut acc = vc.alloc_local::<O>(ScratchpadKind::Ub, l)?;
            let mut total = O::zero();
            let mut total_ready = 0;
            for &(off, valid) in &tiles[t0..t0 + tcount] {
                let mut piece = qin.alloc_tensor()?;
                vc.copy_in(&mut piece, 0, x, off, valid, &[])?;
                let cast_done = vc.vcast::<T, O>(&mut acc, &piece, 0, valid)?;
                qin.free_tensor(piece, cast_done);
                let (sum, ready) = vc.reduce_sum(&acc, 0, valid)?;
                total = total.add(sum);
                total_ready = vc.scalar_ops(1, &[ready, total_ready])?;
            }
            let mut one = vc.alloc_local::<O>(ScratchpadKind::Ub, 1)?;
            vc.insert(&mut one, 0, total, total_ready)?;
            vc.copy_out(&r, chunk, &one, 0, 1, &[])?;
            vc.free_local(one)?;
            vc.free_local(acc)?;
            qin.destroy(vc)?;
        }
        ctx.sync_all()?;
        // Phase 2: cube tile scans + vector propagation with the chunk
        // offset folded into the running partial (per-tile cube→vector
        // dependencies — the serialization MCScan's phase split avoids).
        let first = block * vec_per_core;
        let (t0, _) = chunk_tiles[first];
        let (tl, tc) = chunk_tiles[first + vec_per_core - 1];
        let tile_flags = cube_tile_scans::<T, M>(
            &mut ctx.cube,
            &ctx.flags,
            &consts,
            x,
            &w,
            &tiles[t0..tl + tc],
            s,
            l,
        )?;
        for v in 0..vec_per_core {
            let chunk = first + v;
            let (c0, ccount) = chunk_tiles[chunk];
            let flags = &ctx.flags;
            let vc = &mut ctx.vecs[v];
            let mut r_ub = vc.alloc_local::<O>(ScratchpadKind::Ub, chunks_total)?;
            vc.copy_in(&mut r_ub, 0, &r, 0, chunks_total, &[])?;
            let (mut partial, mut partial_ready) = if chunk == 0 {
                (O::zero(), 0)
            } else {
                vc.reduce_sum(&r_ub, 0, chunk)?
            };
            vc.free_local(r_ub)?;
            let ub = vc.spec().ub_capacity;
            let depth = if 2 * l * M::SIZE + l * O::SIZE + 64 <= ub {
                2
            } else {
                1
            };
            let mut q = TQue::<M>::new(vc, ScratchpadKind::Ub, depth, l)?;
            let mut buf = vc.alloc_local::<O>(ScratchpadKind::Ub, l)?;
            for (ti, &(off, valid)) in tiles[c0..c0 + ccount].iter().enumerate() {
                let dep = vc.wait_flag(flags, tile_flags[c0 - t0 + ti])?;
                let mut piece = q.alloc_tensor()?;
                vc.copy_in(&mut piece, 0, &w, off, valid, &[dep])?;
                let cast_done = vc.vcast::<M, O>(&mut buf, &piece, 0, valid)?;
                q.free_tensor(piece, cast_done);
                for (row_off, row_len) in tile_spans(valid, s) {
                    vc.vadds(&mut buf, row_off, row_len, partial, partial_ready)?;
                    let (p, pr) = vc.extract(&buf, row_off + row_len - 1)?;
                    partial = p;
                    partial_ready = pr;
                }
                vc.copy_out(&y, off, &buf, 0, valid, &[])?;
            }
            vc.free_local(buf)?;
            q.destroy(vc)?;
        }
        Ok(())
    })?;
    finish_report(&mut report, n, T::SIZE, O::SIZE);
    Ok(ScanRun { y, report })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;

    fn setup() -> (ChipSpec, Arc<GlobalMemory>) {
        let spec = ChipSpec::tiny();
        let gm = Arc::new(GlobalMemory::new(spec.hbm_capacity));
        (spec, gm)
    }

    fn cfg(blocks: u32) -> McScanConfig {
        McScanConfig {
            s: 16,
            blocks,
            kind: ScanKind::Inclusive,
        }
    }

    #[test]
    fn all_variants_compute_the_same_scan() {
        let (spec, gm) = setup();
        let data: Vec<i8> = (0..5000).map(|i| ((i * 7) % 9) as i8 - 4).collect();
        let x = GlobalTensor::from_slice(&gm, &data).unwrap();
        let expect = reference::inclusive_widening::<i8, i32>(&data);
        for v in McScanVariant::ALL {
            let run = mcscan_variant::<i8, i32, i32>(&spec, &gm, &x, cfg(2), v).unwrap();
            assert_eq!(run.y.to_vec(), expect, "variant {}", v.name());
        }
    }

    #[test]
    fn variants_handle_partial_tiles_and_single_block() {
        let (spec, gm) = setup();
        let data: Vec<u8> = (0..1333).map(|i| ((i * 13) % 3 == 0) as u8).collect();
        let x = GlobalTensor::from_slice(&gm, &data).unwrap();
        let expect = reference::inclusive_widening::<u8, i32>(&data);
        for v in McScanVariant::ALL {
            let run = mcscan_variant::<u8, i16, i32>(&spec, &gm, &x, cfg(1), v).unwrap();
            assert_eq!(run.y.to_vec(), expect, "variant {}", v.name());
        }
    }

    #[test]
    fn exclusive_rejected_for_ablation_variants() {
        let (spec, gm) = setup();
        let x = GlobalTensor::from_slice(&gm, &[1i8; 64]).unwrap();
        let bad = McScanConfig {
            s: 16,
            blocks: 1,
            kind: ScanKind::Exclusive,
        };
        assert!(mcscan_variant::<i8, i32, i32>(&spec, &gm, &x, bad, McScanVariant::Rss).is_err());
    }

    #[test]
    fn ssa_moves_more_traffic_than_recompute() {
        let (spec, gm) = setup();
        let n = 8192;
        let data = vec![1i8; n];
        let x = GlobalTensor::from_slice(&gm, &data).unwrap();
        let rec = mcscan_variant::<i8, i16, i32>(&spec, &gm, &x, cfg(2), McScanVariant::Recompute)
            .unwrap()
            .report;
        let ssa = mcscan_variant::<i8, i16, i32>(&spec, &gm, &x, cfg(2), McScanVariant::SsaFull)
            .unwrap()
            .report;
        let rec_traffic = rec.bytes_read + rec.bytes_written;
        let ssa_traffic = ssa.bytes_read + ssa.bytes_written;
        assert!(
            ssa_traffic > rec_traffic,
            "SSA {ssa_traffic} B should exceed recompute {rec_traffic} B"
        );
    }

    #[test]
    fn recompute_wins_on_the_big_chip() {
        // At the bandwidth roofline MCScan and RSS tie (both move ~10
        // bytes per int8 element); recompute's edge is (a) strictly less
        // traffic than textbook SSA and (b) a shorter critical path in
        // the latency-bound regime, where phase 1 overlaps cube and
        // vector work instead of serializing them.
        let spec = ChipSpec::ascend_910b4();
        let gm = Arc::new(GlobalMemory::new(spec.hbm_capacity));
        let big = McScanConfig {
            s: 128,
            blocks: spec.ai_cores,
            kind: ScanKind::Inclusive,
        };

        // Roofline regime: within 5% of the best variant, and strictly
        // ahead of SSA(full).
        let n = 4 << 20;
        let x = GlobalTensor::from_slice(&gm, &vec![1i8; n]).unwrap();
        let mut times = Vec::new();
        for v in McScanVariant::ALL {
            let run = mcscan_variant::<i8, i16, i32>(&spec, &gm, &x, big, v).unwrap();
            times.push((v, run.report.time_us()));
        }
        let rec = times[0].1;
        let best = times.iter().map(|&(_, t)| t).fold(f64::MAX, f64::min);
        assert!(
            rec <= best * 1.05,
            "recompute {rec:.1} us vs best {best:.1} us"
        );
        let ssa = times
            .iter()
            .find(|(v, _)| *v == McScanVariant::SsaFull)
            .unwrap()
            .1;
        assert!(
            rec < ssa,
            "recompute {rec:.1} us must beat SSA(full) {ssa:.1} us"
        );

        // Latency-sensitive regime: recompute's overlapped phase 1 wins
        // against the serialized strategies.
        let n = 1 << 18;
        let x = GlobalTensor::from_slice(&gm, &vec![1i8; n]).unwrap();
        let rec = mcscan_variant::<i8, i16, i32>(&spec, &gm, &x, big, McScanVariant::Recompute)
            .unwrap()
            .report
            .time_us();
        for v in [McScanVariant::SsaFull, McScanVariant::Rss] {
            let t = mcscan_variant::<i8, i16, i32>(&spec, &gm, &x, big, v)
                .unwrap()
                .report
                .time_us();
            assert!(
                rec <= t * 1.01,
                "at 256K, recompute ({rec:.1} us) should not trail {} ({t:.1} us)",
                v.name()
            );
        }
    }
}
