//! Shared tiling helpers for the scan kernels.

/// Splits `[0, n)` into spans of at most `tile` elements:
/// `(offset, valid)` pairs in order.
pub(crate) fn tile_spans(n: usize, tile: usize) -> Vec<(usize, usize)> {
    assert!(tile > 0, "tile size must be positive");
    let mut spans = Vec::with_capacity(n.div_ceil(tile));
    let mut off = 0;
    while off < n {
        let valid = tile.min(n - off);
        spans.push((off, valid));
        off += valid;
    }
    spans
}

/// Splits `count` items across `parts` contiguous chunks as evenly as
/// possible: returns `(start, len)` per chunk (some may be empty).
pub(crate) fn partition(count: usize, parts: usize) -> Vec<(usize, usize)> {
    assert!(parts > 0);
    let per = count.div_ceil(parts);
    (0..parts)
        .map(|p| {
            let start = (p * per).min(count);
            let end = ((p + 1) * per).min(count);
            (start, end - start)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_cover_exactly() {
        assert_eq!(tile_spans(10, 4), vec![(0, 4), (4, 4), (8, 2)]);
        assert_eq!(tile_spans(8, 4), vec![(0, 4), (4, 4)]);
        assert_eq!(tile_spans(3, 4), vec![(0, 3)]);
        assert!(tile_spans(0, 4).is_empty());
    }

    #[test]
    fn partition_is_balanced_and_total() {
        let p = partition(10, 3);
        assert_eq!(p, vec![(0, 4), (4, 4), (8, 2)]);
        let p = partition(2, 4);
        assert_eq!(p, vec![(0, 1), (1, 1), (2, 0), (2, 0)]);
        let total: usize = partition(1000, 7).iter().map(|&(_, l)| l).sum();
        assert_eq!(total, 1000);
    }
}
