#!/usr/bin/env bash
# CI gate: everything a PR must pass. Run locally before pushing.
#
# The build is fully offline — third-party deps are vendored under
# crates/*-compat as [workspace.dependencies] path entries — so this
# script needs no network access.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "CI green."
