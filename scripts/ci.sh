#!/usr/bin/env bash
# CI gate: everything a PR must pass. Run locally before pushing.
#
# The build is fully offline — third-party deps are vendored under
# crates/*-compat as [workspace.dependencies] path entries — so this
# script needs no network access.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q (parallel-round scheduler, the default)"
cargo test -q --workspace

echo "==> cargo test -q (serial baton scheduler via ASCEND_SCHED)"
# The same suite must pass under both host scheduling disciplines;
# sched_equiv additionally proves their reports byte-identical.
ASCEND_SCHED=serial cargo test -q --workspace

echo "==> perf report smoke: figures --json + trace"
# Both binaries self-validate their output with bench::validate_json
# before writing; CI additionally pins the stable schema keys.
cargo run --release -p bench --bin figures -- --json --quick
test -s BENCH_scan.json
for key in '"schema":"bench-scan/v4"' '"name":' '"cycles":' '"time_us":' \
    '"gbps":' '"traffic_gbps":' '"l2_traffic_gbps":' '"working_set":' \
    '"gelems":' '"fraction_of_peak":' \
    '"engines":' '"busy_cycles":' '"stall_dependency":' \
    '"stall_contention":' '"stall_barrier":' '"stall_flag":' \
    '"barrier_wait_cycles":' '"flag_wait_cycles":' \
    '"critical_path":' '"makespan":' '"lookback_chain_share":' \
    '"what_ifs":' '"name":"free_flags"' '"name":"zero_lookback"' \
    '"name":"ScanC(fp16)"' '"name":"ScanC(int8)"' '"traffic":' \
    '"host":' '"jobs":' '"host_seconds":' '"kernel_host_seconds":'; do
  grep -qF "$key" BENCH_scan.json \
    || { echo "BENCH_scan.json missing required key $key"; exit 1; }
done

# The host section carries wall-clock times, the one legitimately
# run-dependent part of the document; every byte-stability comparison
# below blanks it first.
strip_host() { sed -E 's/"host":\{[^{}]*\}/"host":{}/' "$1"; }

echo "==> determinism gate: two figure runs must be byte-identical"
# The deterministic scheduler makes launches seed-independent; any
# drift between two back-to-back runs is a scheduler regression.
mv BENCH_scan.json BENCH_scan.first.json
cargo run --release -p bench --bin figures -- --json --quick
cmp <(strip_host BENCH_scan.first.json) <(strip_host BENCH_scan.json) \
  || { echo "BENCH_scan.json is not byte-stable across runs"; exit 1; }
rm -f BENCH_scan.first.json

echo "==> host-parallelism gate: --jobs 1 and --jobs $(nproc) must agree byte-for-byte"
# Simulated results may never depend on how many host threads ran the
# figure points; only the host section's wall-clock times may move.
mv BENCH_scan.json BENCH_scan.wide.json
cargo run --release -p bench --bin figures -- --json --quick --jobs 1
cmp <(strip_host BENCH_scan.json) <(strip_host BENCH_scan.wide.json) \
  || { echo "BENCH_scan.json differs between --jobs 1 and --jobs $(nproc)"; exit 1; }
rm -f BENCH_scan.wide.json

echo "==> oversubscribed smoke: grids larger than the host"
cargo test -q -p ascendc oversubscribed_launch_is_deterministic
cargo test -q --test determinism oversubscribed_scanc_is_reproducible_byte_for_byte

cargo run --release -p bench --bin trace -- mcscan 65536 mcscan_trace.json
test -s mcscan_trace.json
for key in '"traceEvents"' 'Phase I' 'Phase II' 'SyncAll' 'wait:dep' 'wait:barrier' 'wait:flag'; do
  grep -qF "$key" mcscan_trace.json \
    || { echo "mcscan_trace.json missing $key"; exit 1; }
done
rm -f mcscan_trace.json

echo "==> simlint + critpath gates: every shipped kernel's schedule must be clean"
# One trace file per kernel (concatenated launches would look
# concurrent to the analyzer). The traces live in a temp dir that is
# removed even when a gate fails, so a red run leaves no litter in the
# repo root.
lintdir=$(mktemp -d)
trap 'rm -rf "$lintdir"' EXIT
# One `trace` invocation traces all kernels concurrently (--jobs) and
# writes one file per kernel (--dir); the per-kernel JSON is
# byte-identical to what six serial single-kernel runs would write.
cargo run --release -p bench --bin trace -- all 65536 --jobs "$(nproc)" --dir "$lintdir"
lint_traces=()
for k in scanu scanul1 mcscan scanc cumsum batched; do
  test -s "$lintdir/$k.json" || { echo "trace --dir did not write $k.json"; exit 1; }
  lint_traces+=("$lintdir/$k.json")
done
# simlint exits nonzero on ANY diagnostic — races and sync gaps, but
# also leak/balance warnings; --json keeps a machine-readable record.
cargo run --release -p bench --bin simlint -- --json "${lint_traces[@]}" \
  > "$lintdir/simlint.json" \
  || { cat "$lintdir/simlint.json"; echo "simlint found schedule diagnostics"; exit 1; }
grep -qF '"diagnostics":' "$lintdir/simlint.json" \
  || { echo "simlint --json output missing diagnostics key"; exit 1; }
# critpath re-checks the makespan identity and what-if invariants on the
# serialized critical paths of the same traces.
cargo run --release -p bench --bin critpath -- --top 3 "${lint_traces[@]}" \
  || { echo "critpath found a critical-path invariant violation"; exit 1; }

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "CI green."
