#!/usr/bin/env bash
# CI gate: everything a PR must pass. Run locally before pushing.
#
# The build is fully offline — third-party deps are vendored under
# crates/*-compat as [workspace.dependencies] path entries — so this
# script needs no network access.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> perf report smoke: figures --json + trace"
# Both binaries self-validate their output with bench::validate_json
# before writing; CI additionally pins the stable schema keys.
cargo run --release -p bench --bin figures -- --json --quick
test -s BENCH_scan.json
for key in '"schema":"bench-scan/v1"' '"name":' '"cycles":' '"time_us":' \
    '"gbps":' '"traffic_gbps":' '"gelems":' '"fraction_of_peak":' \
    '"engines":' '"busy_cycles":' '"stall_dependency":' \
    '"stall_contention":' '"stall_barrier":' '"barrier_wait_cycles":'; do
  grep -qF "$key" BENCH_scan.json \
    || { echo "BENCH_scan.json missing required key $key"; exit 1; }
done
cargo run --release -p bench --bin trace -- mcscan 65536 mcscan_trace.json
test -s mcscan_trace.json
for key in '"traceEvents"' 'Phase I' 'Phase II' 'SyncAll' 'wait:dep' 'wait:barrier'; do
  grep -qF "$key" mcscan_trace.json \
    || { echo "mcscan_trace.json missing $key"; exit 1; }
done
rm -f mcscan_trace.json

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "CI green."
